// Parity suite for the domain-independent snapshot-merge pipeline: the
// piece-sweep Superimpose must reproduce the legacy range-scan
// superposition, and the streaming (piece-slice) SSBM reduction must
// reproduce the legacy per-integer-cell reduction wherever the cell grid
// can represent the composite — across DC/DVO/DADO shard mixes, gaps, and
// adversarial border overlaps.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/distributed/global_histogram.h"
#include "src/histogram/dynamic_compressed.h"
#include "src/histogram/dynamic_vopt.h"
#include "src/histogram/histogram.h"
#include "src/histogram/ssbm.h"
#include "src/metrics/ks.h"
#include "tests/test_util.h"

namespace dynhist::distributed {
namespace {

using Piece = HistogramModel::Piece;

// Replays a Zipf(z) insert stream (optionally with interleaved deletes of
// previously inserted values) into `histogram` and returns its model.
HistogramModel ReplayModel(Histogram& histogram, std::int64_t domain,
                           std::int64_t points, double z, double delete_prob,
                           std::uint64_t seed) {
  Rng rng(seed);
  const ZipfDistribution zipf(static_cast<std::size_t>(domain), z);
  std::vector<std::int64_t> live;
  for (std::int64_t i = 0; i < points; ++i) {
    const auto v = static_cast<std::int64_t>(zipf.Sample(rng));
    histogram.Insert(v);
    live.push_back(v);
    if (!live.empty() && delete_prob > 0.0 && rng.Bernoulli(delete_prob)) {
      const auto pick = static_cast<std::size_t>(
          rng.UniformInt(static_cast<std::uint64_t>(live.size())));
      histogram.Delete(live[pick], 1);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  return histogram.Model();
}

// A mixed fleet of shard models: DC, DVO, and DADO instances fed disjoint
// seeds over a common domain — the engine's publish input in miniature.
std::vector<HistogramModel> MixedShardModels(std::int64_t domain,
                                             std::int64_t points_per_shard,
                                             double delete_prob,
                                             std::uint64_t seed) {
  std::vector<HistogramModel> models;
  for (int i = 0; i < 2; ++i) {
    DynamicCompressedHistogram dc(
        DynamicCompressedConfig{.buckets = 32, .alpha_min = 1e-6});
    models.push_back(ReplayModel(dc, domain, points_per_shard, 1.0,
                                 delete_prob, seed + 10 * static_cast<std::uint64_t>(i)));
    DynamicVOptHistogram dvo(DynamicVOptConfig{
        .buckets = 32, .policy = DeviationPolicy::kSquared, .sub_buckets = 2});
    models.push_back(ReplayModel(dvo, domain, points_per_shard, 0.5,
                                 delete_prob, seed + 10 * static_cast<std::uint64_t>(i) + 1));
    DynamicVOptHistogram dado(DynamicVOptConfig{
        .buckets = 32, .policy = DeviationPolicy::kAbsolute, .sub_buckets = 2});
    models.push_back(ReplayModel(dado, domain, points_per_shard, 1.5,
                                 delete_prob, seed + 10 * static_cast<std::uint64_t>(i) + 2));
  }
  return models;
}

// DC-only fleet: every border integer-aligned, so cell rasterization is
// exact and the two reduction flavors must coincide.
std::vector<HistogramModel> DcShardModels(std::int64_t domain,
                                          std::int64_t points_per_shard,
                                          double delete_prob,
                                          std::uint64_t seed) {
  std::vector<HistogramModel> models;
  for (int i = 0; i < 5; ++i) {
    DynamicCompressedHistogram dc(
        DynamicCompressedConfig{.buckets = 32, .alpha_min = 1e-6});
    models.push_back(ReplayModel(dc, domain, points_per_shard, 1.0,
                                 delete_prob,
                                 seed + static_cast<std::uint64_t>(i)));
  }
  return models;
}

void ExpectSuperimposeParity(const std::vector<HistogramModel>& models) {
  const HistogramModel sweep = Superimpose(models);
  const HistogramModel legacy = SuperimposeLegacy(models);
  ASSERT_FALSE(sweep.Empty());
  EXPECT_TRUE(testing::ModelIsValid(sweep));
  EXPECT_NEAR(sweep.TotalCount(), legacy.TotalCount(),
              1e-9 * (1.0 + legacy.TotalCount()));
  EXPECT_LT(KsBetweenModels(sweep, legacy), 1e-9);
  // Spot-probe the CDF at and between every legacy border.
  for (const Piece& p : legacy.pieces()) {
    EXPECT_NEAR(sweep.CdfMass(p.left), legacy.CdfMass(p.left),
                1e-9 * (1.0 + legacy.TotalCount()));
    const double mid = 0.5 * (p.left + p.right);
    EXPECT_NEAR(sweep.CdfMass(mid), legacy.CdfMass(mid),
                1e-9 * (1.0 + legacy.TotalCount()));
  }
}

TEST(PieceSweepSuperimposeTest, MatchesLegacyOnMixedShardFleet) {
  ExpectSuperimposeParity(MixedShardModels(2'001, 4'000, 0.0, 7));
}

TEST(PieceSweepSuperimposeTest, MatchesLegacyUnderDeletes) {
  ExpectSuperimposeParity(MixedShardModels(2'001, 4'000, 0.25, 19));
}

TEST(PieceSweepSuperimposeTest, MatchesLegacyOnDcFleet) {
  ExpectSuperimposeParity(DcShardModels(5'001, 4'000, 0.1, 3));
}

TEST(PieceSweepSuperimposeTest, AdversarialBorderOverlaps) {
  // Shared borders, nested pieces, fractional borders, zero-count pieces,
  // and disjoint supports, all in one fleet.
  const auto a = HistogramModel::FromSimpleBuckets(
      {{0.0, 10.0, 5.0}, {10.0, 20.0, 0.0}, {20.0, 30.0, 7.0}});
  const auto b = HistogramModel::FromSimpleBuckets(
      {{5.0, 10.0, 3.0}, {10.0, 12.5, 2.0}, {12.5, 30.0, 1.0}});
  const auto c = HistogramModel::FromSimpleBuckets({{7.25, 7.75, 4.0}});
  const auto d = HistogramModel::FromSimpleBuckets(
      {{40.0, 50.0, 6.0}});  // disjoint, leaves a [30, 40) gap
  const std::vector<HistogramModel> models = {a, b, c, d};
  ExpectSuperimposeParity(models);

  const HistogramModel sweep = Superimpose(models);
  // Sum-of-CDFs losslessness at adversarial probe points.
  for (const double x : {0.0, 5.0, 7.25, 7.5, 7.75, 10.0, 12.5, 15.0, 20.0,
                         29.999, 30.0, 35.0, 40.0, 45.0, 50.0}) {
    double want = 0.0;
    for (const HistogramModel& m : models) want += m.CdfMass(x);
    EXPECT_NEAR(sweep.CdfMass(x), want, 1e-9) << "x=" << x;
  }
  // The [30, 40) region is covered by no input: it must stay a gap.
  bool has_gap_piece = false;
  for (const Piece& p : sweep.pieces()) {
    if (p.left >= 30.0 && p.right <= 40.0) has_gap_piece = true;
  }
  EXPECT_FALSE(has_gap_piece);
}

TEST(PieceSweepSuperimposeTest, KeepsZeroMassCoveredRanges) {
  // An input piece with zero count is still covered support: the sweep
  // keeps it (the legacy path silently dropped it, shrinking MinBorder/
  // MaxBorder). The CDF is unaffected either way.
  const auto a = HistogramModel::FromSimpleBuckets(
      {{0.0, 10.0, 0.0}, {10.0, 20.0, 5.0}, {20.0, 30.0, 0.0}});
  const HistogramModel sweep = Superimpose({a});
  const HistogramModel legacy = SuperimposeLegacy({a});
  EXPECT_DOUBLE_EQ(sweep.MinBorder(), 0.0);
  EXPECT_DOUBLE_EQ(sweep.MaxBorder(), 30.0);
  EXPECT_DOUBLE_EQ(legacy.MinBorder(), 10.0);  // legacy shrinks support
  EXPECT_DOUBLE_EQ(legacy.MaxBorder(), 20.0);
  EXPECT_DOUBLE_EQ(sweep.TotalCount(), 5.0);
  EXPECT_LT(KsBetweenModels(sweep, legacy), 1e-12);
}

TEST(PieceSweepSuperimposeTest, EmptyAndSingleInputs) {
  EXPECT_TRUE(Superimpose({}).Empty());
  EXPECT_TRUE(Superimpose({HistogramModel()}).Empty());
  const auto a = HistogramModel::FromSimpleBuckets({{3.0, 8.0, 2.5}});
  const HistogramModel u = Superimpose({HistogramModel(), a});
  EXPECT_DOUBLE_EQ(u.TotalCount(), 2.5);
  EXPECT_LT(KsBetweenModels(u, a), 1e-12);
}

TEST(PieceSweepSuperimposeTest, DegenerateInputsPinnedAcrossThePipeline) {
  // PR 9 regression pins: a site fleet that has published nothing yet
  // (or whose engines are all empty) flows through the whole merge
  // pipeline — superposition, both reduction modes, the merger — and
  // must come out as a well-formed empty model, never an abort. The
  // aggregator leans on this when frames race ahead of data.
  EXPECT_TRUE(Superimpose({HistogramModel(), HistogramModel()}).Empty());
  EXPECT_TRUE(SuperimposeLegacy({}).Empty());
  EXPECT_TRUE(
      SuperimposeLegacy({HistogramModel(), HistogramModel()}).Empty());

  // Reducing an empty composite is a no-op in both modes.
  EXPECT_TRUE(
      ReduceWithSsbm(HistogramModel(), 64, ReduceMode::kPieces).Empty());
  EXPECT_TRUE(
      ReduceWithSsbm(HistogramModel(), 64, ReduceMode::kCells).Empty());

  // The stateful merger (the aggregator's actual entry point).
  SnapshotMerger merger;
  EXPECT_TRUE(merger.Superimpose({}).Empty());
  EXPECT_TRUE(merger.MergeAndReduce({}, 64, ReduceMode::kPieces).Empty());
  EXPECT_TRUE(merger.MergeAndReduce({}, 64, ReduceMode::kCells).Empty());
  EXPECT_TRUE(merger
                  .MergeAndReduce({HistogramModel(), HistogramModel()}, 64,
                                  ReduceMode::kPieces)
                  .Empty());
  // A merger that just saw empties still merges real input correctly.
  const auto a = HistogramModel::FromSimpleBuckets({{3.0, 8.0, 2.5}});
  const HistogramModel u =
      merger.MergeAndReduce({HistogramModel(), a}, 64, ReduceMode::kPieces);
  EXPECT_DOUBLE_EQ(u.TotalCount(), 2.5);
  EXPECT_LT(KsBetweenModels(u, a), 1e-12);
}

TEST(StreamingReduceTest, PiecesMatchCellsBitForBitOnCellAlignedFleet) {
  const auto models = DcShardModels(2'001, 4'000, 0.1, 11);
  const HistogramModel composite = Superimpose(models);
  for (const std::int64_t buckets : {8, 16, 32, 64}) {
    const HistogramModel pieces =
        ReduceWithSsbm(composite, buckets, ReduceMode::kPieces);
    const HistogramModel cells =
        ReduceWithSsbm(composite, buckets, ReduceMode::kCells);
    EXPECT_NEAR(pieces.TotalCount(), cells.TotalCount(),
                1e-9 * (1.0 + cells.TotalCount()));
    EXPECT_LT(KsBetweenModels(pieces, cells), 1e-9) << buckets << " buckets";
    EXPECT_LE(pieces.NumBuckets(), static_cast<std::size_t>(buckets));
  }
}

TEST(StreamingReduceTest, PiecesTrackCellsQualityOnMixedFleet) {
  // DVO/DADO sub-bucket fragments can carry fractional borders the integer
  // cell grid cannot represent, so the two reductions legitimately differ
  // there — but both must stay in the same quality class relative to the
  // lossless composite (the piece path is the more faithful of the two:
  // rasterization redistributes mass within cells before reducing).
  const auto models = MixedShardModels(2'001, 4'000, 0.1, 23);
  const HistogramModel composite = Superimpose(models);
  for (const std::int64_t buckets : {16, 64}) {
    const HistogramModel pieces =
        ReduceWithSsbm(composite, buckets, ReduceMode::kPieces);
    const HistogramModel cells =
        ReduceWithSsbm(composite, buckets, ReduceMode::kCells);
    EXPECT_NEAR(pieces.TotalCount(), cells.TotalCount(),
                1e-6 * (1.0 + cells.TotalCount()));
    const double ks_pieces = KsBetweenModels(pieces, composite);
    const double ks_cells = KsBetweenModels(cells, composite);
    EXPECT_LE(ks_pieces, ks_cells + 0.01) << buckets << " buckets";
  }
}

TEST(StreamingReduceTest, BudgetAbovePieceCountIsExact) {
  const auto a = HistogramModel::FromSimpleBuckets(
      {{0.0, 4.0, 8.0}, {4.0, 6.0, 1.0}, {9.0, 12.0, 6.0}});
  const HistogramModel reduced =
      ReduceWithSsbm(a, 16, ReduceMode::kPieces);
  EXPECT_LT(KsBetweenModels(reduced, a), 1e-12);
  EXPECT_DOUBLE_EQ(reduced.TotalCount(), a.TotalCount());
}

TEST(StreamingReduceTest, DropsZeroMassPieces) {
  // Zero-density support kept by Superimpose is empty space to SSBM (the
  // cell path always filtered it); the reduced support is the nonzero
  // support under both modes.
  const auto a = HistogramModel::FromSimpleBuckets(
      {{0.0, 10.0, 0.0}, {10.0, 20.0, 5.0}, {20.0, 30.0, 0.0}});
  const HistogramModel pieces = ReduceWithSsbm(a, 4, ReduceMode::kPieces);
  const HistogramModel cells = ReduceWithSsbm(a, 4, ReduceMode::kCells);
  EXPECT_DOUBLE_EQ(pieces.MinBorder(), 10.0);
  EXPECT_DOUBLE_EQ(pieces.MaxBorder(), 20.0);
  EXPECT_LT(KsBetweenModels(pieces, cells), 1e-9);
}

TEST(SnapshotMergerTest, ReusedMergerMatchesFreeFunctions) {
  SnapshotMerger merger;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto models = MixedShardModels(1'001, 2'000, 0.2, seed);
    const HistogramModel composite = merger.Superimpose(models);
    EXPECT_LT(KsBetweenModels(composite, Superimpose(models)), 1e-12);
    const HistogramModel reduced =
        merger.MergeAndReduce(models, 32, ReduceMode::kPieces);
    const HistogramModel want =
        ReduceWithSsbm(Superimpose(models), 32, ReduceMode::kPieces);
    EXPECT_NEAR(reduced.TotalCount(), want.TotalCount(), 1e-9);
    EXPECT_LT(KsBetweenModels(reduced, want), 1e-12);
    // buckets <= 0 publishes the composite unreduced.
    const HistogramModel unreduced =
        merger.MergeAndReduce(models, 0, ReduceMode::kPieces);
    EXPECT_LT(KsBetweenModels(unreduced, composite), 1e-12);
  }
}

TEST(SliceSsbmTest, UnitSlicesReproducePerValueSsbmExactly) {
  // The ValueFreq overload now routes through the slice core; feeding the
  // equivalent unit slices by hand must give identical buckets.
  Rng rng(5);
  std::vector<ValueFreq> entries;
  std::int64_t v = 0;
  for (int i = 0; i < 300; ++i) {
    v += 1 + static_cast<std::int64_t>(rng.UniformInt(4));
    entries.push_back({v, static_cast<double>(1 + rng.UniformInt(50))});
  }
  std::vector<Piece> slices;
  for (const ValueFreq& e : entries) {
    const double left = static_cast<double>(e.value);
    slices.push_back({left, left + 1.0, e.freq});
  }
  for (const auto policy :
       {DeviationPolicy::kSquared, DeviationPolicy::kAbsolute}) {
    SsbmOptions options;
    options.policy = policy;
    const HistogramModel a = BuildSsbm(entries, 24, options);
    const HistogramModel b = BuildSsbm(slices, 24, options);
    ASSERT_EQ(a.NumBuckets(), b.NumBuckets());
    ASSERT_EQ(a.NumPieces(), b.NumPieces());
    for (std::size_t i = 0; i < a.pieces().size(); ++i) {
      EXPECT_EQ(a.pieces()[i], b.pieces()[i]);
    }
  }
}

}  // namespace
}  // namespace dynhist::distributed
