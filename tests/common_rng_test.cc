#include "src/common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dynhist {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next64() == b.Next64()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
    const std::int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.UniformInt(kBuckets)] += 1;
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  constexpr int kDraws = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(9);
  constexpr int kDraws = 100'000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.Normal(100.0, 5.0);
  EXPECT_NEAR(sum / kDraws, 100.0, 0.2);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(13);
  constexpr int kDraws = 200'000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Exponential(3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace dynhist
