#include "src/engine/histogram_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/data/frequency_vector.h"
#include "src/engine/engine_options.h"
#include "src/engine/snapshot.h"
#include "src/histogram/dynamic_vopt.h"
#include "src/metrics/ks.h"
#include "tests/test_util.h"

namespace dynhist::engine {
namespace {

constexpr std::int64_t kDomain = 1'001;
constexpr char kKey[] = "t.a";

std::vector<std::int64_t> ZipfValues(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  const ZipfDistribution zipf(static_cast<std::size_t>(kDomain), 1.0);
  std::vector<std::int64_t> values;
  values.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<std::int64_t>(zipf.Sample(rng)));
  }
  return values;
}

EngineOptions TestOptions() {
  EngineOptions options;
  options.shards = 8;
  options.batch_size = 16;
  options.snapshot_every = 0;  // publish manually unless a test opts in
  return options;
}

TEST(HistogramEngineTest, UnknownKeyYieldsEmptyEpochZeroSnapshot) {
  HistogramEngine engine(TestOptions());
  const EngineSnapshot snapshot = engine.Snapshot("nope");
  EXPECT_EQ(snapshot.epoch(), 0u);
  EXPECT_EQ(snapshot.TotalCount(), 0.0);
  EXPECT_EQ(engine.EstimateRange("nope", 0, kDomain), 0.0);
  EXPECT_EQ(engine.EstimateEquals("nope", 5), 0.0);
}

TEST(HistogramEngineTest, SingleThreadSnapshotKsCloseToDirectHistogram) {
  const auto values = ZipfValues(20'000, /*seed=*/11);

  HistogramEngine engine(TestOptions());
  FrequencyVector truth(kDomain);
  DynamicVOptHistogram direct(
      DynamicVOptConfig{.buckets = 64, .policy = DeviationPolicy::kAbsolute});
  for (const std::int64_t v : values) {
    engine.Insert(kKey, v);
    direct.Insert(v);
    truth.Insert(v);
  }

  const EngineSnapshot snapshot = engine.RefreshSnapshot(kKey);
  EXPECT_TRUE(testing::ModelIsValid(snapshot.model()));
  EXPECT_NEAR(snapshot.TotalCount(), 20'000.0, 1.0);

  const double ks_direct = KsStatistic(truth, direct.Model());
  const double ks_engine = KsStatistic(truth, snapshot.model());
  // The merged snapshot must be in the same accuracy class as the
  // single histogram it replaces (the §8 merge is near-lossless).
  EXPECT_LE(ks_engine, ks_direct + 0.05);
  EXPECT_LT(ks_engine, 0.1);
}

TEST(HistogramEngineTest, EstimatesMatchSnapshotModel) {
  HistogramEngine engine(TestOptions());
  for (std::int64_t v = 0; v < 1'000; ++v) engine.Insert(kKey, v % 100);
  const EngineSnapshot snapshot = engine.RefreshSnapshot(kKey);
  EXPECT_DOUBLE_EQ(engine.EstimateRange(kKey, 0, 99),
                   snapshot.EstimateRange(0, 99));
  EXPECT_NEAR(engine.EstimateRange(kKey, 0, 99), 1'000.0, 1.0);
  EXPECT_DOUBLE_EQ(engine.EstimateEquals(kKey, 5),
                   snapshot.EstimateEquals(5));
}

TEST(HistogramEngineTest, HeldSnapshotIsImmutableUnderLaterUpdates) {
  HistogramEngine engine(TestOptions());
  for (const std::int64_t v : ZipfValues(5'000, 3)) engine.Insert(kKey, v);
  const EngineSnapshot held = engine.RefreshSnapshot(kKey);
  const double held_total = held.TotalCount();
  const double held_estimate = held.EstimateRange(0, kDomain - 1);
  const std::uint64_t held_epoch = held.epoch();
  ASSERT_EQ(held_epoch, 1u);

  for (const std::int64_t v : ZipfValues(5'000, 4)) engine.Insert(kKey, v);
  const EngineSnapshot fresh = engine.RefreshSnapshot(kKey);

  EXPECT_EQ(held.epoch(), held_epoch);
  EXPECT_DOUBLE_EQ(held.TotalCount(), held_total);
  EXPECT_DOUBLE_EQ(held.EstimateRange(0, kDomain - 1), held_estimate);
  EXPECT_EQ(fresh.epoch(), 2u);
  EXPECT_NEAR(fresh.TotalCount(), 2.0 * held_total, 1.0);
}

TEST(HistogramEngineTest, AutoPublishFollowsSnapshotCadence) {
  EngineOptions options = TestOptions();
  options.snapshot_every = 1'000;
  HistogramEngine engine(options);
  for (const std::int64_t v : ZipfValues(5'500, 5)) engine.Insert(kKey, v);
  const EngineSnapshot snapshot = engine.Snapshot(kKey);
  EXPECT_GE(snapshot.epoch(), 4u);  // ~5 cadence crossings
  EXPECT_GE(snapshot.TotalCount(), 4'000.0);
  EXPECT_GE(engine.Stats().publishes, 4u);
}

TEST(HistogramEngineTest, InsertBatchMatchesLoopInserts) {
  // Coalescing groups a batch by value, so the two ingestion paths only
  // stay operation-for-operation identical with it disabled (they drain
  // batches of different sizes); this test pins the buffer plumbing, the
  // next one covers coalescing itself.
  EngineOptions options = TestOptions();
  options.coalesce_batches = false;
  const auto values = ZipfValues(10'000, 6);
  HistogramEngine loop_engine(options);
  HistogramEngine batch_engine(options);
  for (const std::int64_t v : values) loop_engine.Insert(kKey, v);
  batch_engine.InsertBatch(kKey, values);
  EXPECT_DOUBLE_EQ(loop_engine.LiveTotalCount(kKey),
                   batch_engine.LiveTotalCount(kKey));
  const double a =
      loop_engine.RefreshSnapshot(kKey).EstimateRange(0, kDomain / 2);
  const double b =
      batch_engine.RefreshSnapshot(kKey).EstimateRange(0, kDomain / 2);
  EXPECT_NEAR(a, b, 1e-6);
}

TEST(HistogramEngineTest, CoalescedBatchesConserveMassAndQuality) {
  // Coalescing changes the maintenance trajectory but must conserve mass
  // exactly and stay in the same estimation-quality class.
  const auto values = ZipfValues(20'000, 12);
  EngineOptions coalesced = TestOptions();
  coalesced.batch_size = 256;  // plenty of duplicates per batch at z=1
  EngineOptions faithful = coalesced;
  faithful.coalesce_batches = false;

  FrequencyVector truth(kDomain);
  for (const std::int64_t v : values) truth.Insert(v);

  HistogramEngine a(coalesced);
  HistogramEngine b(faithful);
  a.InsertBatch(kKey, values);
  b.InsertBatch(kKey, values);
  EXPECT_DOUBLE_EQ(a.LiveTotalCount(kKey), 20'000.0);
  EXPECT_DOUBLE_EQ(b.LiveTotalCount(kKey), 20'000.0);

  const double ks_a = KsStatistic(truth, a.RefreshSnapshot(kKey).model());
  const double ks_b = KsStatistic(truth, b.RefreshSnapshot(kKey).model());
  EXPECT_LT(ks_a, 0.1);
  EXPECT_LE(ks_a, ks_b + 0.05);
}

TEST(HistogramEngineTest, LegacyCellReduceMatchesPiecesReduce) {
  // DC shard models have integer-aligned borders, where cell
  // rasterization is exact and the two reduction flavors must coincide.
  // (DVO/DADO sub-bucket fragments can have fractional borders the cell
  // grid cannot represent; see merge_pipeline_test for that comparison.)
  const auto values = ZipfValues(20'000, 13);
  EngineOptions pieces = TestOptions();
  pieces.kind = ShardHistogramKind::kDynamicCompressed;
  EngineOptions cells = pieces;
  cells.use_legacy_cell_reduce = true;
  HistogramEngine a(pieces);
  HistogramEngine b(cells);
  a.InsertBatch(kKey, values);
  b.InsertBatch(kKey, values);
  const EngineSnapshot sa = a.RefreshSnapshot(kKey);
  const EngineSnapshot sb = b.RefreshSnapshot(kKey);
  EXPECT_NEAR(sa.TotalCount(), sb.TotalCount(), 1e-6);
  // Same shard contents, so the two reduction flavors must land on models
  // of (near) identical shape.
  EXPECT_LT(KsBetweenModels(sa.model(), sb.model()), 1e-9);
}

TEST(HistogramEngineTest, DynamicCompressedKindWorks) {
  EngineOptions options = TestOptions();
  options.kind = ShardHistogramKind::kDynamicCompressed;
  HistogramEngine engine(options);
  FrequencyVector truth(kDomain);
  for (const std::int64_t v : ZipfValues(20'000, 7)) {
    engine.Insert(kKey, v);
    truth.Insert(v);
  }
  const EngineSnapshot snapshot = engine.RefreshSnapshot(kKey);
  EXPECT_NEAR(snapshot.TotalCount(), 20'000.0, 1.0);
  EXPECT_LT(KsStatistic(truth, snapshot.model()), 0.1);
}

TEST(HistogramEngineTest, MultipleKeysAreIndependent) {
  HistogramEngine engine(TestOptions());
  engine.Insert("a", 1);
  engine.Insert("b", 2);
  engine.Insert("b", 3);
  EXPECT_DOUBLE_EQ(engine.LiveTotalCount("a"), 1.0);
  EXPECT_DOUBLE_EQ(engine.LiveTotalCount("b"), 2.0);
  EXPECT_EQ(engine.Stats().keys, 2u);
}

// N writers + M readers; writers also delete ~25% of their own inserts
// (the §7.3.1 mixed workload). Final mass must equal inserted - deleted
// exactly, and no reader may ever observe a torn or invalid snapshot.
TEST(HistogramEngineTest, ConcurrentWritersAndReadersConserveMass) {
  EngineOptions options = TestOptions();
  options.snapshot_every = 2'000;
  HistogramEngine engine(options);

  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr std::int64_t kPerWriter = 10'000;

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> net_mass{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(w) + 100);
      const ZipfDistribution zipf(static_cast<std::size_t>(kDomain), 1.0);
      std::vector<std::int64_t> own;  // values this writer has inserted
      std::int64_t net = 0;
      for (std::int64_t i = 0; i < kPerWriter; ++i) {
        const auto v = static_cast<std::int64_t>(zipf.Sample(rng));
        engine.Insert(kKey, v);
        own.push_back(v);
        ++net;
        if (!own.empty() && rng.Bernoulli(0.25)) {
          const std::size_t pick = static_cast<std::size_t>(
              rng.UniformInt(static_cast<std::uint64_t>(own.size())));
          engine.Delete(kKey, own[pick]);
          own[pick] = own.back();
          own.pop_back();
          --net;
        }
      }
      net_mass.fetch_add(net);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(static_cast<std::uint64_t>(r) + 900);
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const EngineSnapshot snapshot = engine.Snapshot(kKey);
        // Epochs never go backwards from a reader's point of view.
        EXPECT_GE(snapshot.epoch(), last_epoch);
        last_epoch = snapshot.epoch();
        EXPECT_TRUE(testing::ModelIsValid(snapshot.model()));
        const std::int64_t lo = rng.UniformInt(0, kDomain - 1);
        const double estimate =
            snapshot.EstimateRange(lo, kDomain - 1);
        EXPECT_GE(estimate, 0.0);
        EXPECT_TRUE(std::isfinite(estimate));
        EXPECT_LE(estimate, snapshot.TotalCount() + 1e-9);
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Exact conservation through buffers, shards, and concurrent publishes.
  EXPECT_DOUBLE_EQ(engine.LiveTotalCount(kKey),
                   static_cast<double>(net_mass.load()));
  const EngineSnapshot final_snapshot = engine.RefreshSnapshot(kKey);
  EXPECT_NEAR(final_snapshot.TotalCount(),
              static_cast<double>(net_mass.load()), 1.0);
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.inserts, static_cast<std::uint64_t>(kWriters * kPerWriter));
  EXPECT_GE(stats.publishes, 1u);
}

TEST(HistogramEngineTest, BackgroundThreadPublishesWithoutManualRefresh) {
  EngineOptions options = TestOptions();
  options.background_interval_ms = 5;
  HistogramEngine engine(options);
  for (const std::int64_t v : ZipfValues(2'000, 8)) engine.Insert(kKey, v);
  engine.FlushAll();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  // Wait for the full mass, not just a nonzero epoch: on a slow run
  // (sanitizers, loaded CI) the first cadence tick can land mid-insert
  // and publish a partial epoch; later ticks publish the rest.
  while (engine.Snapshot(kKey).TotalCount() < 1'999.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const EngineSnapshot snapshot = engine.Snapshot(kKey);
  EXPECT_GE(snapshot.epoch(), 1u);
  EXPECT_NEAR(snapshot.TotalCount(), 2'000.0, 1.0);
}

TEST(HistogramEngineTest, PublishAttachesCompiledSnapshot) {
  HistogramEngine engine(TestOptions());  // compile_snapshots defaults on
  EXPECT_EQ(engine.Snapshot(kKey).compiled(), nullptr);  // epoch-0: absent
  for (const std::int64_t v : ZipfValues(5'000, 21)) engine.Insert(kKey, v);
  const EngineSnapshot snapshot = engine.RefreshSnapshot(kKey);
  const CompiledSnapshot* compiled = snapshot.compiled();
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->NumPieces(), snapshot.model().pieces().size());
  EXPECT_EQ(compiled->TotalCount(), snapshot.model().TotalCount());
  // Bit-exact parity between the snapshot's two query paths.
  for (std::int64_t lo = 0; lo < kDomain; lo += 37) {
    const std::int64_t hi = std::min<std::int64_t>(kDomain - 1, lo + 113);
    EXPECT_EQ(compiled->EstimateRange(lo, hi),
              snapshot.model().EstimateRange(lo, hi));
    EXPECT_EQ(snapshot.EstimateRange(lo, hi),
              snapshot.model().EstimateRange(lo, hi));
  }
}

TEST(HistogramEngineTest, CompilationOffFallsBackToPieceWalkWithParity) {
  EngineOptions off = TestOptions();
  off.compile_snapshots = false;
  HistogramEngine walk(off);
  HistogramEngine fast(TestOptions());
  for (const std::int64_t v : ZipfValues(5'000, 22)) {
    walk.Insert(kKey, v);
    fast.Insert(kKey, v);
  }
  const EngineSnapshot walk_snap = walk.RefreshSnapshot(kKey);
  const EngineSnapshot fast_snap = fast.RefreshSnapshot(kKey);
  EXPECT_EQ(walk_snap.compiled(), nullptr);
  ASSERT_NE(fast_snap.compiled(), nullptr);
  ASSERT_TRUE(
      testing::ModelsBitIdentical(walk_snap.model(), fast_snap.model()));
  for (std::int64_t lo = 0; lo < kDomain; lo += 41) {
    const std::int64_t hi = std::min<std::int64_t>(kDomain - 1, lo + 250);
    EXPECT_EQ(walk.EstimateRange(kKey, lo, hi),
              fast.EstimateRange(kKey, lo, hi));
  }
  // The piece-walk engine counted its queries as fallbacks; the compiled
  // engine served every one from the arena.
  EXPECT_GT(walk.Stats(kKey).fallback_queries, 0u);
  EXPECT_EQ(walk.Stats(kKey).fallback_queries, walk.Stats(kKey).queries);
  EXPECT_EQ(fast.Stats(kKey).fallback_queries, 0u);
}

TEST(HistogramEngineTest, PerKeyCompileOverrideTakesEffectNextPublish) {
  HistogramEngine engine(TestOptions());
  KeyOptionOverrides o;
  o.compile_snapshots = false;
  engine.SetKeyOptions(kKey, o);
  EXPECT_FALSE(engine.EffectiveOptions(kKey).compile_snapshots);
  for (const std::int64_t v : ZipfValues(2'000, 23)) engine.Insert(kKey, v);
  EXPECT_EQ(engine.RefreshSnapshot(kKey).compiled(), nullptr);
  o.compile_snapshots = true;
  engine.SetKeyOptions(kKey, o);
  EXPECT_NE(engine.RefreshSnapshot(kKey).compiled(), nullptr);
}

TEST(HistogramEngineTest, CompiledQueriesSeePublishedEpochsLockFree) {
  // Writers publish continuously while readers hammer EstimateRange; every
  // read must be internally consistent (mass within the published range's
  // total) and the epoch sequence observed by a reader must be monotone.
  EngineOptions options = TestOptions();
  options.snapshot_every = 500;
  HistogramEngine engine(options);
  for (const std::int64_t v : ZipfValues(1'000, 24)) engine.Insert(kKey, v);
  engine.RefreshSnapshot(kKey);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread writer([&] {
    for (const std::int64_t v : ZipfValues(30'000, 25)) {
      engine.Insert(kKey, v);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<bool> ok{true};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<std::uint64_t>(r) + 100);
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const EngineSnapshot snap = engine.Snapshot(kKey);
        if (snap.epoch() < last_epoch) ok.store(false);
        last_epoch = snap.epoch();
        if (snap.epoch() > 0 && snap.compiled() == nullptr) {
          ok.store(false);  // every publication must carry its arena
        }
        const std::int64_t lo = rng.UniformInt(0, kDomain - 1);
        const std::int64_t hi =
            std::min<std::int64_t>(kDomain - 1, lo + 200);
        const double est = engine.EstimateRange(kKey, lo, hi);
        if (!(est >= 0.0) || est > snap.TotalCount() + 31'500.0) {
          ok.store(false);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_GT(reads.load(), 0u);
  // With compilation on, none of those estimate reads fell back.
  EXPECT_EQ(engine.Stats(kKey).fallback_queries, 0u);
  const EngineSnapshot final_snap = engine.RefreshSnapshot(kKey);
  ASSERT_NE(final_snap.compiled(), nullptr);
  EXPECT_EQ(final_snap.compiled()->TotalCount(),
            final_snap.model().TotalCount());
}

TEST(HistogramEngineTest, KeysEnumeratesSortedRegisteredKeys) {
  HistogramEngine engine(TestOptions());
  EXPECT_TRUE(engine.Keys().empty());
  engine.Insert("zeta", 1);
  engine.Insert("alpha", 2);
  engine.Insert("mid", 3);
  const std::vector<std::string> keys = engine.Keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "mid");
  EXPECT_EQ(keys[2], "zeta");
}

TEST(HistogramEngineTest, PublishExternalServesTheGivenModel) {
  // PublishExternal is the aggregator's entry point: a model produced
  // outside the shard path becomes this key's published snapshot, with
  // the usual epoch bump, compiled arena, and estimate parity.
  HistogramEngine engine(TestOptions());
  const auto model = HistogramModel::FromSimpleBuckets(
      {{0.0, 10.5, 100.0}, {10.5, 40.0, 59.0}});
  const EngineSnapshot published =
      engine.PublishExternal("ext.key", model, /*watermark=*/77);
  EXPECT_EQ(published.epoch(), 1u);
  EXPECT_EQ(published.watermark(), 77u);
  ASSERT_NE(published.compiled(), nullptr);

  const EngineSnapshot read_back = engine.Snapshot("ext.key");
  EXPECT_EQ(read_back.epoch(), 1u);
  EXPECT_EQ(read_back.model().TotalCount(), model.TotalCount());
  // The engine's query paths serve it, bit-identical to the source.
  const CompiledSnapshot direct = CompiledSnapshot::Compile(model);
  for (std::int64_t lo = 0; lo <= 40; lo += 3) {
    EXPECT_EQ(engine.EstimateRange("ext.key", lo, lo + 11),
              direct.EstimateRange(lo, lo + 11));
  }

  // Epochs keep counting across external publications, and the
  // published-version counter advances (handle readers resync).
  const EngineSnapshot second = engine.PublishExternal(
      "ext.key", HistogramModel::FromSimpleBuckets({{0.0, 5.0, 7.0}}),
      /*watermark=*/78);
  EXPECT_EQ(second.epoch(), 2u);
  EXPECT_EQ(engine.Snapshot("ext.key").watermark(), 78u);
  EXPECT_EQ(engine.EstimateRange("ext.key", 0, 4), 7.0);
}

TEST(HistogramEngineTest, PublishExternalCoexistsWithKeyHandles) {
  // A handle resolved before an external publication must observe it.
  HistogramEngine engine(TestOptions());
  const KeyHandle handle = engine.Resolve("ext.handle");
  EXPECT_EQ(engine.EstimateRange(handle, 0, 100), 0.0);
  engine.PublishExternal(
      "ext.handle",
      HistogramModel::FromSimpleBuckets({{0.0, 50.0, 500.0}}), 1);
  EXPECT_EQ(engine.EstimateRange(handle, 0, 100), 500.0);
}

}  // namespace
}  // namespace dynhist::engine
