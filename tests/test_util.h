// Shared helpers for dynhist tests.

#ifndef DYNHIST_TESTS_TEST_UTIL_H_
#define DYNHIST_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "src/data/frequency_vector.h"
#include "src/data/update_stream.h"
#include "src/engine/histogram_engine.h"
#include "src/histogram/deviation.h"
#include "src/histogram/model.h"

namespace dynhist::testing {

/// Builds entries from parallel (value, freq) lists.
inline std::vector<ValueFreq> Entries(
    std::initializer_list<std::pair<std::int64_t, double>> pairs) {
  std::vector<ValueFreq> entries;
  for (const auto& [v, f] : pairs) entries.push_back({v, f});
  return entries;
}

/// Builds a FrequencyVector over [0, domain) from a list of values.
inline FrequencyVector MakeData(std::int64_t domain,
                                std::initializer_list<std::int64_t> values) {
  FrequencyVector data(domain);
  for (const std::int64_t v : values) data.Insert(v);
  return data;
}

/// Checks structural sanity of a model: pieces sorted, disjoint, positive
/// width, non-negative counts; buckets tile pieces. Returns true when valid
/// (the HistogramModel constructor DH_CHECKs most of this; tests use this
/// on derived data).
inline bool ModelIsValid(const HistogramModel& model) {
  double prev_right = -std::numeric_limits<double>::infinity();
  for (const auto& p : model.pieces()) {
    if (p.right <= p.left) return false;
    if (p.left < prev_right - 1e-9) return false;
    if (p.count < 0.0) return false;
    prev_right = p.right;
  }
  return true;
}

/// Exact structural equality of two models: identical piece lists (every
/// border and count bit for bit) and identical bucket tiling. This is the
/// oracle comparison for the sync-vs-async engine tests: with batch_size 1
/// the same op sequence must yield byte-identical publications no matter
/// when merges ran.
inline bool ModelsBitIdentical(const HistogramModel& a,
                               const HistogramModel& b) {
  return a.pieces() == b.pieces() && a.buckets() == b.buckets();
}

/// Feeds one update-stream operation to an engine key.
inline void ApplyToEngine(engine::HistogramEngine& engine,
                          std::string_view key, const UpdateOp& op) {
  switch (op.kind) {
    case UpdateOp::Kind::kInsert:
      engine.Insert(key, op.value);
      break;
    case UpdateOp::Kind::kDelete:
      engine.Delete(key, op.value);
      break;
    case UpdateOp::Kind::kFeedback:
      engine.RecordFeedback(key, op.value, op.hi, op.actual);
      break;
  }
}

/// Exhaustive optimal partition cost over `entries` into `buckets` buckets
/// (reference for DP tests; exponential, keep inputs tiny). Uses the same
/// bucket extent convention as the production DP: a bucket holding entries
/// [a..b] spans its data extent [value(a), value(b) + 1); zero frequencies
/// inside the extent count toward the deviation, trailing gaps do not.
double BruteForceOptimalCost(const std::vector<ValueFreq>& entries,
                             std::int64_t buckets, DeviationPolicy policy);

}  // namespace dynhist::testing

#endif  // DYNHIST_TESTS_TEST_UTIL_H_
