#include "src/histogram/dynamic_compressed.h"

#include <gtest/gtest.h>

#include "src/data/cluster_generator.h"
#include "src/data/mailorder_generator.h"
#include "src/data/update_stream.h"
#include "src/histogram/driver.h"
#include "src/metrics/ks.h"
#include "tests/test_util.h"

namespace dynhist {
namespace {

DynamicCompressedConfig SmallConfig(std::int64_t buckets = 8) {
  DynamicCompressedConfig config;
  config.buckets = buckets;
  return config;
}

TEST(DynamicCompressedTest, LoadingPhaseIsExact) {
  DynamicCompressedHistogram h(SmallConfig(8));
  FrequencyVector truth(100);
  for (const std::int64_t v : {5, 5, 20, 31, 31, 31, 47}) {
    h.Insert(v);
    truth.Insert(v);
  }
  EXPECT_TRUE(h.InLoadingPhase());  // only 4 distinct so far
  EXPECT_NEAR(KsStatistic(truth, h.Model()), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.TotalCount(), 7.0);
}

TEST(DynamicCompressedTest, LoadingEndsAtDistinctBudget) {
  DynamicCompressedHistogram h(SmallConfig(4));
  for (const std::int64_t v : {10, 20, 30}) h.Insert(v);
  EXPECT_TRUE(h.InLoadingPhase());
  h.Insert(40);
  EXPECT_FALSE(h.InLoadingPhase());
  EXPECT_EQ(h.Model().NumBuckets(), 4u);
}

TEST(DynamicCompressedTest, CountsLandInCorrectBuckets) {
  DynamicCompressedHistogram h(SmallConfig(4));
  for (const std::int64_t v : {10, 20, 30, 40}) h.Insert(v);
  // Bucket ranges are [10,20) [20,30) [30,40) [40,41).
  h.Insert(15);
  h.Insert(25);
  h.Insert(25);
  const auto model = h.Model();
  EXPECT_DOUBLE_EQ(model.BucketCount(0), 2.0);  // 10 + 15
  EXPECT_DOUBLE_EQ(model.BucketCount(1), 3.0);  // 20 + 25 + 25
  EXPECT_DOUBLE_EQ(model.BucketCount(2), 1.0);
  EXPECT_DOUBLE_EQ(model.BucketCount(3), 1.0);
}

TEST(DynamicCompressedTest, ExtendsRangeForOutOfBoundsInserts) {
  DynamicCompressedHistogram h(SmallConfig(4));
  for (const std::int64_t v : {10, 20, 30, 40}) h.Insert(v);
  h.Insert(2);   // below the leftmost border
  h.Insert(90);  // beyond the right edge
  const auto model = h.Model();
  EXPECT_DOUBLE_EQ(model.MinBorder(), 2.0);
  EXPECT_DOUBLE_EQ(model.MaxBorder(), 91.0);
  EXPECT_DOUBLE_EQ(h.TotalCount(), 6.0);
}

TEST(DynamicCompressedTest, SkewTriggersRepartition) {
  DynamicCompressedHistogram h(SmallConfig(8));
  Rng rng(1);
  // Hammer one narrow region; the chi-square test must eventually fire.
  for (int v = 0; v < 8; ++v) h.Insert(v * 10);
  for (int i = 0; i < 5'000; ++i) h.Insert(rng.UniformInt(40, 45));
  EXPECT_GT(h.RepartitionCount(), 0);
}

TEST(DynamicCompressedTest, RepartitionEqualizesRegularCounts) {
  DynamicCompressedHistogram h(SmallConfig(8));
  Rng rng(2);
  for (int v = 0; v < 8; ++v) h.Insert(v * 100);
  for (int i = 0; i < 20'000; ++i) {
    h.Insert(rng.UniformInt(0, 700));
  }
  // After heavy uniform-ish traffic the last repartition should leave
  // regular counts within a reasonable band of each other.
  const auto model = h.Model();
  double min_count = 1e300, max_count = 0.0;
  for (std::size_t b = 0; b < model.NumBuckets(); ++b) {
    if (model.buckets()[b].singular) continue;
    min_count = std::min(min_count, model.BucketCount(b));
    max_count = std::max(max_count, model.BucketCount(b));
  }
  EXPECT_LT(max_count, 5.0 * (min_count + 1.0));
}

TEST(DynamicCompressedTest, HeavyValuePromotedToSingular) {
  DynamicCompressedHistogram h(SmallConfig(8));
  Rng rng(3);
  for (int v = 0; v < 8; ++v) h.Insert(v * 10);
  // One value carries half the stream: must end in a singleton bucket.
  for (int i = 0; i < 10'000; ++i) {
    h.Insert(rng.Bernoulli(0.5) ? 37 : rng.UniformInt(0, 70));
  }
  EXPECT_GT(h.SingularCount(), 0);
  const auto model = h.Model();
  // The singular bucket at 37 answers the point query almost exactly.
  EXPECT_NEAR(model.EstimatePoint(37) / h.TotalCount(), 0.5, 0.05);
}

TEST(DynamicCompressedTest, SingularDemotedWhenMassFades) {
  DynamicCompressedHistogram h(SmallConfig(8));
  Rng rng(4);
  for (int v = 0; v < 8; ++v) h.Insert(v * 10);
  for (int i = 0; i < 4'000; ++i) {
    h.Insert(rng.Bernoulli(0.5) ? 37 : rng.UniformInt(0, 70));
  }
  ASSERT_GT(h.SingularCount(), 0);
  // Now delete the hot value's mass and flood elsewhere.
  for (int i = 0; i < 1'900; ++i) h.Delete(37, 2'000 - i);
  for (int i = 0; i < 20'000; ++i) h.Insert(rng.UniformInt(0, 70));
  EXPECT_EQ(h.SingularCount(), 0);
}

TEST(DynamicCompressedTest, DeletesDecrementTotals) {
  DynamicCompressedHistogram h(SmallConfig(4));
  FrequencyVector truth(100);
  UpdateStream stream;
  for (const std::int64_t v : {10, 20, 30, 40, 25, 25}) {
    stream.push_back(UpdateOp::Insert(v));
  }
  stream.push_back(UpdateOp::Delete(25));
  stream.push_back(UpdateOp::Delete(10));
  Replay(stream, &h, &truth);
  EXPECT_DOUBLE_EQ(h.TotalCount(), 4.0);
  EXPECT_DOUBLE_EQ(h.Model().TotalCount(), 4.0);
}

TEST(DynamicCompressedTest, DeleteSpillsToClosestBucket) {
  DynamicCompressedHistogram h(SmallConfig(4));
  for (const std::int64_t v : {10, 20, 30, 40}) h.Insert(v);
  // Empty bucket [20,30) by deleting its only point, then delete "from" it
  // again: the point must come from a neighbor, not crash.
  h.Delete(20, 1);
  h.Delete(22, 0);
  EXPECT_DOUBLE_EQ(h.TotalCount(), 2.0);
}

TEST(DynamicCompressedTest, TracksEvolvingDistributionOnRealisticStream) {
  ClusterDataConfig data_config;
  data_config.num_points = 30'000;
  data_config.domain_size = 1'001;
  data_config.num_clusters = 100;
  data_config.seed = 5;
  Rng rng(6);
  const auto stream =
      MakeRandomInsertStream(GenerateClusterData(data_config), rng);

  DynamicCompressedHistogram h(SmallConfig(64));
  FrequencyVector truth(data_config.domain_size);
  Replay(stream, &h, &truth);
  EXPECT_DOUBLE_EQ(h.TotalCount(), 30'000.0);
  EXPECT_LT(KsStatistic(truth, h.Model()), 0.1);
  EXPECT_TRUE(testing::ModelIsValid(h.Model()));
}

TEST(DynamicCompressedTest, SpikyDataNeverOverflowsBucketBudget) {
  // Regression: on spiky (mail-order-like) data, repartitioning used to
  // grant every low-mass region its floor bucket *and* the dominant region
  // its full proportional share, overflowing the bucket budget and dying
  // on the rebuilt-size DH_CHECK. Many singulars fragmenting the axis is
  // the trigger.
  for (const std::int64_t buckets : {15, 31, 63, 127}) {
    DynamicCompressedHistogram h({.buckets = buckets});
    Rng rng(42);
    for (int i = 0; i < 30'000; ++i) {
      // 20 heavy spikes over a sparse background.
      const std::int64_t v = rng.Bernoulli(0.7)
                                 ? (rng.UniformInt(0, 19)) * 25 + 3
                                 : rng.UniformInt(0, 500);
      h.Insert(v);
    }
    EXPECT_LE(static_cast<std::int64_t>(h.Model().NumBuckets()), buckets);
    EXPECT_DOUBLE_EQ(h.TotalCount(), 30'000.0);
  }
}

TEST(DynamicCompressedTest, MailOrderTraceSurvivesAllBudgets) {
  // The exact workload that exposed the overflow (bench fig19).
  const auto records = MakeMailOrderData(3);
  for (const std::int64_t buckets : {31, 127, 511}) {
    DynamicCompressedHistogram h({.buckets = buckets});
    for (const std::int64_t v : records) h.Insert(v);
    EXPECT_LE(static_cast<std::int64_t>(h.Model().NumBuckets()), buckets);
  }
}

TEST(DynamicCompressedTest, WeightedInsertsMatchRepeatedInsertsInMass) {
  Rng rng(31);
  DynamicCompressedHistogram weighted(SmallConfig(16));
  DynamicCompressedHistogram repeated(SmallConfig(16));
  double total = 0.0;
  for (int i = 0; i < 2'000; ++i) {
    const std::int64_t v = rng.UniformInt(0, 400);
    const auto count = static_cast<std::int64_t>(1 + rng.UniformInt(8));
    weighted.InsertN(v, count);
    for (std::int64_t c = 0; c < count; ++c) repeated.Insert(v);
    total += static_cast<double>(count);
  }
  EXPECT_DOUBLE_EQ(weighted.TotalCount(), total);
  EXPECT_DOUBLE_EQ(repeated.TotalCount(), total);
  EXPECT_TRUE(testing::ModelIsValid(weighted.Model()));
}

TEST(DynamicCompressedTest, WeightedDeletesConserveMassExactly) {
  Rng rng(33);
  DynamicCompressedHistogram h(SmallConfig(16));
  std::vector<std::int64_t> live;
  for (int i = 0; i < 5'000; ++i) {
    const std::int64_t v = rng.UniformInt(0, 300);
    h.Insert(v);
    live.push_back(v);
  }
  // Delete in weighted groups (mixing fast path and spill fallback).
  double expect = 5'000.0;
  while (live.size() > 500) {
    const std::int64_t v = live.back();
    std::int64_t count = 0;
    while (!live.empty() && live.back() == v) {
      live.pop_back();
      ++count;
    }
    // Also group several distinct trailing values into one DeleteN each.
    h.DeleteN(v, count);
    expect -= static_cast<double>(count);
    EXPECT_DOUBLE_EQ(h.TotalCount(), expect);
  }
  EXPECT_TRUE(testing::ModelIsValid(h.Model()));
}

TEST(DynamicCompressedTest, DeleteSpillsToNearestBucketWithMass) {
  // Build a histogram whose middle region is drained below one point, then
  // delete there: the outward search must take the point from the closest
  // bucket that still holds a whole point, conserving total mass.
  DynamicCompressedHistogram h(SmallConfig(8));
  for (int v = 0; v < 8; ++v) h.Insert(v * 10);  // loading: borders at 10s
  for (int i = 0; i < 100; ++i) h.Insert(5);
  for (int i = 0; i < 100; ++i) h.Insert(75);
  const double before = h.TotalCount();
  // Value 40's bucket holds ~1 point; repeated deletes force spills.
  for (int i = 0; i < 50; ++i) h.Delete(40, 1);
  EXPECT_DOUBLE_EQ(h.TotalCount(), before - 50.0);
  EXPECT_TRUE(testing::ModelIsValid(h.Model()));
}

TEST(DynamicCompressedTest, WeightedOpsDuringLoadingPhase) {
  DynamicCompressedHistogram h(SmallConfig(8));
  h.InsertN(100, 40);
  EXPECT_TRUE(h.InLoadingPhase());
  h.DeleteN(100, 15);
  EXPECT_DOUBLE_EQ(h.TotalCount(), 25.0);
  for (int v = 0; v < 8; ++v) h.InsertN(v, 3);
  EXPECT_FALSE(h.InLoadingPhase());
  EXPECT_DOUBLE_EQ(h.TotalCount(), 49.0);
}

TEST(DynamicCompressedTest, AlphaMinZeroFreezesBorders) {
  DynamicCompressedConfig config = SmallConfig(8);
  config.alpha_min = 0.0;  // §3: "setting alpha_min to 0 would freeze"
  DynamicCompressedHistogram h(config);
  Rng rng(7);
  for (int v = 0; v < 8; ++v) h.Insert(v * 10);
  for (int i = 0; i < 5'000; ++i) h.Insert(rng.UniformInt(40, 45));
  EXPECT_EQ(h.RepartitionCount(), 0);
}

}  // namespace
}  // namespace dynhist
