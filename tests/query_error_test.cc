#include "src/metrics/query_error.h"

#include <gtest/gtest.h>

#include "src/histogram/static_equi.h"
#include "tests/test_util.h"

namespace dynhist {
namespace {

TEST(QueryErrorTest, ExactModelHasZeroError) {
  const FrequencyVector data = testing::MakeData(50, {3, 3, 10, 20, 20, 20});
  const auto model = HistogramModel::FromSimpleBuckets(
      {{3, 4, 2.0}, {10, 11, 1.0}, {20, 21, 3.0}});
  Rng rng(1);
  const auto queries = MakeUniformQueries(50, 200, rng);
  EXPECT_NEAR(AvgRelativeErrorPercent(data, model, queries), 0.0, 1e-9);
}

TEST(QueryErrorTest, KnownSingleQueryError) {
  const FrequencyVector data = testing::MakeData(10, {0, 0, 0, 0});  // 4 @ 0
  // Model spreads the 4 points over [0, 4): point query {0} estimates 1.
  const auto model = HistogramModel::FromSimpleBuckets({{0, 4, 4.0}});
  const std::vector<RangeQuery> queries = {{0, 0}};
  // |4 - 1| / 4 = 0.75 -> 75%.
  EXPECT_NEAR(AvgRelativeErrorPercent(data, model, queries), 75.0, 1e-9);
}

TEST(QueryErrorTest, SkipsEmptyQueries) {
  const FrequencyVector data = testing::MakeData(10, {5});
  const auto model = HistogramModel::FromSimpleBuckets({{5, 6, 1.0}});
  const std::vector<RangeQuery> queries = {{0, 1}, {5, 5}};
  // The empty query {0,1} is skipped; {5,5} is exact.
  EXPECT_NEAR(AvgRelativeErrorPercent(data, model, queries), 0.0, 1e-9);
}

TEST(QueryErrorTest, AllEmptyQueriesGiveZero) {
  const FrequencyVector data = testing::MakeData(10, {5});
  const auto model = HistogramModel::FromSimpleBuckets({{5, 6, 1.0}});
  const std::vector<RangeQuery> queries = {{0, 1}, {7, 9}};
  EXPECT_DOUBLE_EQ(AvgRelativeErrorPercent(data, model, queries), 0.0);
}

TEST(QueryGeneratorsTest, UniformQueriesNormalized) {
  Rng rng(2);
  for (const RangeQuery& q : MakeUniformQueries(100, 500, rng)) {
    EXPECT_LE(q.lo, q.hi);
    EXPECT_GE(q.lo, 0);
    EXPECT_LT(q.hi, 100);
  }
}

TEST(QueryGeneratorsTest, DataQueriesFollowDistribution) {
  FrequencyVector data(100);
  for (int i = 0; i < 1'000; ++i) data.Insert(10);
  data.Insert(90);
  Rng rng(3);
  const auto queries = MakeDataQueries(data, 300, rng);
  // Nearly all endpoints should be the dominant value 10.
  int at10 = 0;
  for (const RangeQuery& q : queries) at10 += (q.lo == 10 && q.hi == 10);
  EXPECT_GT(at10, 250);
}

TEST(QueryGeneratorsTest, OpenQueriesAnchorAtZero) {
  Rng rng(4);
  for (const RangeQuery& q : MakeOpenQueries(100, 100, rng)) {
    EXPECT_EQ(q.lo, 0);
    EXPECT_LT(q.hi, 100);
  }
}

TEST(QueryErrorTest, AgreesWithKsOnRelativeRanking) {
  // A much finer histogram should rank better under Eq. (7) as well.
  Rng rng(5);
  FrequencyVector data(300);
  for (int i = 0; i < 3'000; ++i) {
    data.Insert(rng.UniformInt(0, 49) * (rng.Bernoulli(0.3) ? 5 : 1));
  }
  const auto coarse = BuildEquiDepth(data, 3);
  const auto fine = BuildEquiDepth(data, 48);
  Rng qrng(6);
  const auto queries = MakeUniformQueries(300, 400, qrng);
  EXPECT_LT(AvgRelativeErrorPercent(data, fine, queries),
            AvgRelativeErrorPercent(data, coarse, queries));
}

}  // namespace
}  // namespace dynhist
