#include "src/distributed/global_histogram.h"

#include <gtest/gtest.h>

#include "src/distributed/site.h"
#include "src/histogram/budget.h"
#include "src/histogram/ssbm.h"
#include "src/metrics/ks.h"
#include "tests/test_util.h"

namespace dynhist::distributed {
namespace {

UnionWorkloadConfig SmallWorkload() {
  UnionWorkloadConfig config;
  config.domain_size = 1'001;
  config.total_points = 20'000;
  config.num_sites = 5;
  config.seed = 3;
  return config;
}

TEST(UnionWorkloadTest, SiteSizesSumToTotal) {
  const auto sites = GenerateUnionWorkload(SmallWorkload());
  ASSERT_EQ(sites.size(), 5u);
  std::int64_t total = 0;
  for (const Site& s : sites) total += s.data().TotalCount();
  EXPECT_EQ(total, 20'000);
}

TEST(UnionWorkloadTest, SiteSkewConcentratesData) {
  auto config = SmallWorkload();
  config.zipf_site = 3.0;
  const auto sites = GenerateUnionWorkload(config);
  std::int64_t max_site = 0;
  for (const Site& s : sites) {
    max_site = std::max(max_site, s.data().TotalCount());
  }
  EXPECT_GT(max_site, 15'000);  // Zipf(3) head share
}

TEST(UnionWorkloadTest, DeterministicInSeed) {
  const auto a = GenerateUnionWorkload(SmallWorkload());
  const auto b = GenerateUnionWorkload(SmallWorkload());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].data().counts(), b[i].data().counts());
  }
}

TEST(SuperimposeTest, TwoDisjointModels) {
  const auto a = HistogramModel::FromSimpleBuckets({{0, 10, 5.0}});
  const auto b = HistogramModel::FromSimpleBuckets({{20, 30, 7.0}});
  const auto u = Superimpose({a, b});
  EXPECT_DOUBLE_EQ(u.TotalCount(), 12.0);
  EXPECT_DOUBLE_EQ(u.MassInRealRange(0, 10), 5.0);
  EXPECT_DOUBLE_EQ(u.MassInRealRange(10, 20), 0.0);
  EXPECT_DOUBLE_EQ(u.MassInRealRange(20, 30), 7.0);
}

TEST(SuperimposeTest, OverlappingModelsAddDensities) {
  const auto a = HistogramModel::FromSimpleBuckets({{0, 10, 10.0}});
  const auto b = HistogramModel::FromSimpleBuckets({{5, 15, 10.0}});
  const auto u = Superimpose({a, b});
  EXPECT_DOUBLE_EQ(u.TotalCount(), 20.0);
  EXPECT_DOUBLE_EQ(u.MassInRealRange(0, 5), 5.0);
  EXPECT_DOUBLE_EQ(u.MassInRealRange(5, 10), 10.0);  // both contribute
  EXPECT_DOUBLE_EQ(u.MassInRealRange(10, 15), 5.0);
}

TEST(SuperimposeTest, IsLossless) {
  // §8: "this process does not involve any loss of information" — the
  // superposition's CDF equals the sum of the member CDFs everywhere.
  const auto sites = GenerateUnionWorkload(SmallWorkload());
  std::vector<HistogramModel> locals;
  for (const Site& s : sites) locals.push_back(s.BuildLocalHistogram(250.0));
  const auto u = Superimpose(locals);
  for (double x = 0.0; x <= 1'001.0; x += 13.7) {
    double sum = 0.0;
    for (const auto& m : locals) sum += m.CdfMass(x);
    EXPECT_NEAR(u.CdfMass(x), sum, 1e-6);
  }
}

TEST(ReduceTest, PreservesTotalMass) {
  const auto sites = GenerateUnionWorkload(SmallWorkload());
  std::vector<HistogramModel> locals;
  for (const Site& s : sites) locals.push_back(s.BuildLocalHistogram(250.0));
  const auto u = Superimpose(locals);
  const auto reduced = ReduceWithSsbm(u, 15);
  EXPECT_NEAR(reduced.TotalCount(), u.TotalCount(), 1.0);
  EXPECT_LE(reduced.NumBuckets(), 15u);
}

TEST(GlobalHistogramTest, BothStrategiesApproximateTheUnion) {
  const auto sites = GenerateUnionWorkload(SmallWorkload());
  const FrequencyVector all = UnionData(sites);
  const auto h_union = BuildGlobalHistogram(
      sites, GlobalStrategy::kHistogramThenUnion, 250.0);
  const auto u_histogram = BuildGlobalHistogram(
      sites, GlobalStrategy::kUnionThenHistogram, 250.0);
  const double ks_hu = KsStatistic(all, h_union);
  const double ks_uh = KsStatistic(all, u_histogram);
  EXPECT_LT(ks_hu, 0.15);
  EXPECT_LT(ks_uh, 0.15);
  // §8 conclusion: the two alternatives are of comparable quality.
  EXPECT_NEAR(ks_hu, ks_uh, 0.05);
}

TEST(GlobalHistogramTest, RespectsMemoryBudget) {
  const auto sites = GenerateUnionWorkload(SmallWorkload());
  for (const double memory : {100.0, 250.0, 1'000.0}) {
    const auto model = BuildGlobalHistogram(
        sites, GlobalStrategy::kHistogramThenUnion, memory);
    const auto budget = BucketBudget(memory, BucketLayout::kBorderCount);
    EXPECT_LE(model.NumBuckets(), static_cast<std::size_t>(budget));
  }
}

TEST(GlobalHistogramTest, SingleSiteDegeneratesGracefully) {
  auto config = SmallWorkload();
  config.num_sites = 1;
  const auto sites = GenerateUnionWorkload(config);
  const auto model = BuildGlobalHistogram(
      sites, GlobalStrategy::kHistogramThenUnion, 250.0);
  const FrequencyVector all = UnionData(sites);
  EXPECT_LT(KsStatistic(all, model), 0.15);
}

}  // namespace
}  // namespace dynhist::distributed
