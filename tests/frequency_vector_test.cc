#include "src/data/frequency_vector.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dynhist {
namespace {

TEST(FrequencyVectorTest, StartsEmpty) {
  FrequencyVector data(100);
  EXPECT_EQ(data.TotalCount(), 0);
  EXPECT_EQ(data.DistinctCount(), 0);
  EXPECT_EQ(data.CumulativeCount(99), 0);
}

TEST(FrequencyVectorTest, InsertAndCount) {
  FrequencyVector data(10);
  data.Insert(3);
  data.Insert(3);
  data.Insert(7);
  EXPECT_EQ(data.Count(3), 2);
  EXPECT_EQ(data.Count(7), 1);
  EXPECT_EQ(data.Count(5), 0);
  EXPECT_EQ(data.TotalCount(), 3);
  EXPECT_EQ(data.DistinctCount(), 2);
}

TEST(FrequencyVectorTest, DeleteReversesInsert) {
  FrequencyVector data(10);
  data.Insert(4);
  data.Insert(4);
  data.Delete(4);
  EXPECT_EQ(data.Count(4), 1);
  EXPECT_EQ(data.DistinctCount(), 1);
  data.Delete(4);
  EXPECT_EQ(data.Count(4), 0);
  EXPECT_EQ(data.DistinctCount(), 0);
  EXPECT_EQ(data.TotalCount(), 0);
}

TEST(FrequencyVectorTest, MinMaxValues) {
  const FrequencyVector data = testing::MakeData(100, {42, 5, 99, 5});
  EXPECT_EQ(data.MinValue(), 5);
  EXPECT_EQ(data.MaxValue(), 99);
}

TEST(FrequencyVectorTest, CumulativeCountIsAStepCdf) {
  const FrequencyVector data = testing::MakeData(20, {2, 2, 5, 9});
  EXPECT_EQ(data.CumulativeCount(-1), 0);
  EXPECT_EQ(data.CumulativeCount(1), 0);
  EXPECT_EQ(data.CumulativeCount(2), 2);
  EXPECT_EQ(data.CumulativeCount(4), 2);
  EXPECT_EQ(data.CumulativeCount(5), 3);
  EXPECT_EQ(data.CumulativeCount(9), 4);
  EXPECT_EQ(data.CumulativeCount(100), 4);
}

TEST(FrequencyVectorTest, CumulativeCountValidAfterUpdates) {
  FrequencyVector data(20);
  data.Insert(5);
  EXPECT_EQ(data.CumulativeCount(10), 1);
  data.Insert(3);  // invalidates the cached prefix
  EXPECT_EQ(data.CumulativeCount(4), 1);
  data.Delete(5);
  EXPECT_EQ(data.CumulativeCount(10), 1);
  EXPECT_EQ(data.CumulativeCount(3), 1);
}

TEST(FrequencyVectorTest, RangeCount) {
  const FrequencyVector data = testing::MakeData(20, {2, 2, 5, 9, 15});
  EXPECT_EQ(data.RangeCount(2, 9), 4);
  EXPECT_EQ(data.RangeCount(3, 4), 0);
  EXPECT_EQ(data.RangeCount(0, 19), 5);
  EXPECT_EQ(data.RangeCount(9, 2), 0);  // inverted range is empty
}

TEST(FrequencyVectorTest, NonZeroEntriesAscending) {
  const FrequencyVector data = testing::MakeData(20, {9, 2, 2, 15});
  const auto entries = data.NonZeroEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].value, 2);
  EXPECT_DOUBLE_EQ(entries[0].freq, 2.0);
  EXPECT_EQ(entries[1].value, 9);
  EXPECT_EQ(entries[2].value, 15);
}

TEST(FrequencyVectorTest, ConstructFromValues) {
  const FrequencyVector data(10, {1, 1, 1, 8});
  EXPECT_EQ(data.Count(1), 3);
  EXPECT_EQ(data.Count(8), 1);
  EXPECT_EQ(data.TotalCount(), 4);
}

TEST(FrequencyVectorDeathTest, RejectsOutOfDomain) {
  FrequencyVector data(10);
  EXPECT_DEATH(data.Insert(10), "DH_CHECK");
  EXPECT_DEATH(data.Insert(-1), "DH_CHECK");
}

TEST(FrequencyVectorDeathTest, RejectsDeleteOfAbsentValue) {
  FrequencyVector data(10);
  EXPECT_DEATH(data.Delete(3), "DH_CHECK");
}

}  // namespace
}  // namespace dynhist
