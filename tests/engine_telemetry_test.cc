// Tests of the engine's telemetry integration: per-key stats that sum to
// the global aggregate under concurrent writers and merge workers,
// queue-wait accounting, staleness gauges, per-key exposition series,
// trace events for the publish lifecycle, and the telemetry-disabled
// mode (stats still counted, distributions and traces off).

#include "src/engine/histogram_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/engine_options.h"
#include "src/telemetry/exposition.h"
#include "src/telemetry/trace_ring.h"

namespace dynhist::engine {
namespace {

// Deterministic manual-pump baseline: nothing publishes or drains unless
// the test says so.
EngineOptions ManualOptions() {
  EngineOptions options;
  options.shards = 2;
  options.batch_size = 4;
  options.snapshot_every = 0;
  options.merge_workers = 0;
  return options;
}

// The value of the exposition line starting `name` + ' ' (no labels), or
// -1 when the series is absent.
double MetricValue(const std::string& text, const std::string& name) {
  const std::string prefix = name + " ";
  std::size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stod(text.substr(pos + prefix.size()));
    }
    pos += prefix.size();
  }
  return -1.0;
}

std::string Prometheus(const HistogramEngine& engine) {
  std::string text;
  engine.WriteMetricsPrometheus(&text);
  std::string error;
  EXPECT_TRUE(telemetry::SelfCheckPrometheus(text, &error)) << error;
  return text;
}

TEST(EngineTelemetryTest, PerKeyStatsSumToGlobalUnderConcurrency) {
  EngineOptions options;
  options.shards = 2;
  options.batch_size = 8;
  options.snapshot_every = 256;
  options.async_publish = true;
  options.merge_workers = 2;
  HistogramEngine engine(options);

  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 20'000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&engine, w] {
      Rng rng(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const char* key = (i & 1) != 0 ? "hot" : "cold";
        const auto v = static_cast<std::int64_t>(rng.UniformInt(0, 999));
        engine.Insert(key, v);
        if (i % 4 == 0) engine.Delete(key, v);  // delete what we inserted
        if (i % 64 == 0) engine.Snapshot(key);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  engine.DrainPublishes();

  const EngineStats hot = engine.Stats("hot");
  const EngineStats cold = engine.Stats("cold");
  const EngineStats global = engine.Stats();
  EXPECT_EQ(global.keys, 2u);
  EXPECT_EQ(global.inserts, hot.inserts + cold.inserts);
  EXPECT_EQ(global.inserts,
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(global.deletes, hot.deletes + cold.deletes);
  EXPECT_EQ(global.queries, hot.queries + cold.queries);
  EXPECT_EQ(global.fallback_queries,
            hot.fallback_queries + cold.fallback_queries);
  EXPECT_EQ(global.publishes, hot.publishes + cold.publishes);
  EXPECT_EQ(global.async_publishes,
            hot.async_publishes + cold.async_publishes);
  EXPECT_EQ(global.publish_queued,
            hot.publish_queued + cold.publish_queued);
  EXPECT_EQ(global.publish_coalesced,
            hot.publish_coalesced + cold.publish_coalesced);
  EXPECT_EQ(global.publish_rejected,
            hot.publish_rejected + cold.publish_rejected);
  EXPECT_EQ(global.publish_skipped,
            hot.publish_skipped + cold.publish_skipped);
  EXPECT_EQ(global.publish_nanos, hot.publish_nanos + cold.publish_nanos);
  EXPECT_EQ(global.queue_wait_nanos,
            hot.queue_wait_nanos + cold.queue_wait_nanos);
  EXPECT_EQ(global.max_publish_nanos,
            std::max(hot.max_publish_nanos, cold.max_publish_nanos));
  // Every publication advances its key's epoch by exactly 1, so at
  // quiescence the epoch sum equals the publish count.
  EXPECT_EQ(global.snapshot_epoch, hot.snapshot_epoch + cold.snapshot_epoch);
  EXPECT_EQ(global.snapshot_epoch, global.publishes);
  EXPECT_GT(global.publishes, 0u);
}

TEST(EngineTelemetryTest, QueueWaitIsAccountedOnDrain) {
  EngineOptions options = ManualOptions();
  options.snapshot_every = 16;
  options.async_publish = true;
  HistogramEngine engine(options);

  for (int i = 0; i < 16; ++i) engine.Insert("k", i);
  EXPECT_EQ(engine.Stats("k").publish_queued, 1u);
  EXPECT_EQ(engine.PublishQueueDepth(), 1u);
  // Nothing has drained the request yet: no wait recorded.
  EXPECT_EQ(MetricValue(Prometheus(engine),
                        "dynhist_publish_queue_wait_ns_count"),
            0.0);

  EXPECT_EQ(engine.PumpPublishes(), 1u);
  const EngineStats stats = engine.Stats("k");
  EXPECT_EQ(stats.async_publishes, 1u);
  const std::string text = Prometheus(engine);
  EXPECT_EQ(MetricValue(text, "dynhist_publish_queue_wait_ns_count"), 1.0);
  EXPECT_EQ(MetricValue(text, "dynhist_publish_latency_ns_count"), 1.0);
}

TEST(EngineTelemetryTest, ExpositionExposesPerKeySeriesAndStaleness) {
  HistogramEngine engine(ManualOptions());
  for (int i = 0; i < 10; ++i) engine.Insert("orders.amount", i);
  engine.Snapshot("no.such.key");  // counted globally, not per-key

  std::string text = Prometheus(engine);
  EXPECT_NE(
      text.find("dynhist_key_inserts_total{key=\"orders.amount\"} 10"),
      std::string::npos);
  EXPECT_NE(
      text.find("dynhist_key_staleness_updates{key=\"orders.amount\"} 10"),
      std::string::npos);
  EXPECT_NE(
      text.find("dynhist_key_snapshot_epoch{key=\"orders.amount\"} 0"),
      std::string::npos);
  EXPECT_EQ(MetricValue(text, "dynhist_engine_queries_total"), 1.0);
  EXPECT_EQ(engine.Stats("no.such.key").keys, 0u);

  engine.RefreshSnapshot("orders.amount");
  text = Prometheus(engine);
  EXPECT_NE(
      text.find("dynhist_key_snapshot_epoch{key=\"orders.amount\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("dynhist_key_staleness_updates{key=\"orders.amount\"} 0"),
      std::string::npos);

  const EngineStats stats = engine.Stats("orders.amount");
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"inserts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_epoch\":1"), std::string::npos);
}

TEST(EngineTelemetryTest, IngestDistributionsRecordAtBatchGranularity) {
  EngineOptions options = ManualOptions();
  options.coalesce_batches = true;
  HistogramEngine engine(options);
  // Eight copies of one value in a 4-op-batch engine: at least one drain
  // records a batch size, and coalescing collapses a run of >= 2.
  engine.InsertBatch("k", {5, 5, 5, 5, 5, 5, 5, 5});
  engine.Flush("k");
  const std::string text = Prometheus(engine);
  EXPECT_GT(MetricValue(text, "dynhist_ingest_batch_ops_count"), 0.0);
  EXPECT_GT(MetricValue(text, "dynhist_coalesce_run_length_count"), 0.0);
}

TEST(EngineTelemetryTest, TraceRecordsPublishLifecycleAndRejects) {
  EngineOptions options = ManualOptions();
  options.trace_capacity = 16;
  HistogramEngine engine(options);
  ASSERT_TRUE(engine.trace().enabled());
  for (int i = 0; i < 8; ++i) engine.Insert("k", i);
  engine.RefreshSnapshot("k");

  const std::vector<telemetry::TraceEvent> events = engine.trace().Events();
  ASSERT_EQ(events.size(), 3u);  // flush, merge, publish of epoch 1
  EXPECT_EQ(events[0].kind, telemetry::TraceEventKind::kFlush);
  EXPECT_EQ(events[1].kind, telemetry::TraceEventKind::kMerge);
  EXPECT_EQ(events[2].kind, telemetry::TraceEventKind::kPublish);
  for (const telemetry::TraceEvent& e : events) {
    EXPECT_STREQ(e.key, "k");
    EXPECT_STREQ(e.trigger, "refresh");
    EXPECT_EQ(e.epoch, 1u);
  }
  std::string trace_json;
  engine.WriteTraceJson(&trace_json);
  EXPECT_NE(trace_json.find("\"trigger\":\"refresh\""), std::string::npos);

  // A zero-capacity publish queue rejects every async request and traces
  // the rejection.
  EngineOptions reject_options = ManualOptions();
  reject_options.snapshot_every = 4;
  reject_options.async_publish = true;
  reject_options.publish_queue_capacity = 0;
  reject_options.trace_capacity = 8;
  HistogramEngine rejecting(reject_options);
  for (int i = 0; i < 4; ++i) rejecting.Insert("k", i);
  EXPECT_EQ(rejecting.Stats("k").publish_rejected, 1u);
  const auto rejected_events = rejecting.trace().Events();
  ASSERT_FALSE(rejected_events.empty());
  EXPECT_EQ(rejected_events.back().kind,
            telemetry::TraceEventKind::kReject);
}

TEST(EngineTelemetryTest, DisabledTelemetryStillCountsStats) {
  EngineOptions options = ManualOptions();
  options.snapshot_every = 16;
  options.async_publish = true;
  options.enable_telemetry = false;
  HistogramEngine engine(options);
  EXPECT_FALSE(engine.trace().enabled());

  for (int i = 0; i < 16; ++i) engine.Insert("k", i);
  engine.PumpPublishes();
  const EngineStats stats = engine.Stats("k");
  EXPECT_EQ(stats.inserts, 16u);
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_GT(stats.publish_nanos, 0u);     // always accounted
  EXPECT_EQ(stats.queue_wait_nanos, 0u);  // needs telemetry

  // Exposition still renders (and validates); distributions stay empty.
  const std::string text = Prometheus(engine);
  EXPECT_EQ(MetricValue(text, "dynhist_publish_latency_ns_count"), 0.0);
  EXPECT_EQ(MetricValue(text, "dynhist_ingest_batch_ops_count"), 0.0);
  EXPECT_EQ(MetricValue(text, "dynhist_engine_inserts_total"), 16.0);
  std::string trace_json;
  engine.WriteTraceJson(&trace_json);
  EXPECT_NE(trace_json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(EngineTelemetryTest, QueryLatencyIsSampledEveryKth) {
  // Estimate reads sample the latency distribution every 1024th query per
  // key, first query included: N queries => floor((N - 1) / 1024) + 1
  // samples. Deterministic because nothing else feeds the histogram.
  EngineOptions options = ManualOptions();
  HistogramEngine engine(options);
  for (int i = 0; i < 32; ++i) engine.Insert("k", i % 8);
  engine.RefreshSnapshot("k");  // Snapshot reads don't sample; queries do

  const int kQueries = 3 * 1024 + 5;
  for (int q = 0; q < kQueries; ++q) engine.EstimateRange("k", 0, 7);
  const std::string text = Prometheus(engine);
  // RefreshSnapshot didn't bump the query counter, so sampled reads are
  // those at query numbers 0, 1024, 2048, 3072.
  EXPECT_EQ(MetricValue(text, "dynhist_query_latency_ns_count"), 4.0);
  EXPECT_GT(MetricValue(text, "dynhist_query_latency_ns_sum"), 0.0);
}

TEST(EngineTelemetryTest, FallbackQueriesExposedPerKeyAndGlobally) {
  EngineOptions options = ManualOptions();
  options.compile_snapshots = false;
  HistogramEngine engine(options);
  for (int i = 0; i < 16; ++i) engine.Insert("walk", i);
  engine.RefreshSnapshot("walk");
  for (int q = 0; q < 7; ++q) engine.EstimateEquals("walk", 3);

  const std::string text = Prometheus(engine);
  EXPECT_NE(text.find("dynhist_key_fallback_queries_total{key=\"walk\"} 7"),
            std::string::npos);
  EXPECT_EQ(MetricValue(text, "dynhist_engine_fallback_queries_total"), 7.0);
  EXPECT_NE(engine.Stats("walk").ToJson().find("\"fallback_queries\":7"),
            std::string::npos);

  // Flip compilation on for the key: the next publication serves from the
  // arena and the fallback counter freezes.
  KeyOptionOverrides o;
  o.compile_snapshots = true;
  engine.SetKeyOptions("walk", o);
  engine.RefreshSnapshot("walk");
  for (int q = 0; q < 5; ++q) engine.EstimateEquals("walk", 3);
  EXPECT_EQ(engine.Stats("walk").fallback_queries, 7u);
  EXPECT_EQ(engine.Stats("walk").queries, 12u);
}

TEST(EngineTelemetryTest, DisabledTelemetrySkipsQueryLatencySampling) {
  EngineOptions options = ManualOptions();
  options.enable_telemetry = false;
  HistogramEngine engine(options);
  for (int i = 0; i < 16; ++i) engine.Insert("k", i);
  engine.RefreshSnapshot("k");
  for (int q = 0; q < 2000; ++q) engine.EstimateRange("k", 0, 15);
  const std::string text = Prometheus(engine);
  EXPECT_EQ(MetricValue(text, "dynhist_query_latency_ns_count"), 0.0);
  EXPECT_EQ(engine.Stats("k").queries, 2000u);
}

}  // namespace
}  // namespace dynhist::engine
