#include "src/histogram/static_equi.h"

#include "src/common/rng.h"

#include <gtest/gtest.h>

#include "src/metrics/ks.h"
#include "tests/test_util.h"

namespace dynhist {
namespace {

TEST(EquiWidthTest, EmptyInput) {
  EXPECT_TRUE(BuildEquiWidth(std::vector<ValueFreq>{}, 4).Empty());
}

TEST(EquiWidthTest, BordersEquallySpaced) {
  FrequencyVector data(100);
  for (int v = 0; v < 100; ++v) data.Insert(v);
  const auto model = BuildEquiWidth(data, 4);
  ASSERT_EQ(model.NumBuckets(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    const auto pieces = model.BucketPieces(b);
    EXPECT_NEAR(pieces.back().right - pieces.front().left, 25.0, 1.0);
    EXPECT_NEAR(model.BucketCount(b), 25.0, 1e-9);
  }
}

TEST(EquiWidthTest, SkipsEmptyRanges) {
  // All data in the first tenth of the span: later equal-width slots are
  // empty and produce no bucket.
  const auto entries = testing::Entries({{0, 5.0}, {1, 5.0}, {100, 1.0}});
  const auto model = BuildEquiWidth(entries, 10);
  EXPECT_LE(model.NumBuckets(), 3u);
  EXPECT_DOUBLE_EQ(model.TotalCount(), 11.0);
}

TEST(EquiDepthTest, EqualCountsOnUniformData) {
  FrequencyVector data(1'000);
  for (int v = 0; v < 1'000; ++v) data.Insert(v);
  const auto model = BuildEquiDepth(data, 8);
  ASSERT_EQ(model.NumBuckets(), 8u);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_NEAR(model.BucketCount(b), 125.0, 1.0);
  }
}

TEST(EquiDepthTest, PartitionConstraintWithinOneValue) {
  // Counts can differ only because one distinct value cannot be split.
  Rng rng(3);
  FrequencyVector data(500);
  for (int i = 0; i < 5'000; ++i) data.Insert(rng.UniformInt(0, 499));
  const auto model = BuildEquiDepth(data, 10);
  double max_freq = 0.0;
  for (const auto& e : data.NonZeroEntries()) {
    max_freq = std::max(max_freq, e.freq);
  }
  const double target = 5'000.0 / 10.0;
  for (std::size_t b = 0; b < model.NumBuckets(); ++b) {
    EXPECT_NEAR(model.BucketCount(b), target, max_freq + 1.0);
  }
}

TEST(EquiDepthTest, ExactWhenBudgetCoversDistinct) {
  const FrequencyVector data = testing::MakeData(50, {3, 9, 9, 27});
  const auto model = BuildEquiDepth(data, 16);
  EXPECT_NEAR(KsStatistic(data, model), 0.0, 1e-12);
}

TEST(EquiDepthTest, TotalCountPreserved) {
  Rng rng(4);
  FrequencyVector data(200);
  for (int i = 0; i < 1'234; ++i) data.Insert(rng.UniformInt(0, 199));
  const auto model = BuildEquiDepth(data, 7);
  EXPECT_NEAR(model.TotalCount(), 1'234.0, 1e-9);
}

TEST(EquiDepthTest, BeatsEquiWidthOnSkewedData) {
  // The classical result ([8], cited in §2): Equi-Depth dominates
  // Equi-Width on skewed distributions.
  Rng rng(5);
  FrequencyVector data(1'000);
  for (int i = 0; i < 20'000; ++i) {
    // Hot head + long tail.
    data.Insert(rng.Bernoulli(0.8) ? rng.UniformInt(0, 9)
                                   : rng.UniformInt(0, 999));
  }
  const double ed = KsStatistic(data, BuildEquiDepth(data, 12));
  const double ew = KsStatistic(data, BuildEquiWidth(data, 12));
  EXPECT_LT(ed, ew);
}

TEST(EquiDepthTest, SingleBucket) {
  const FrequencyVector data = testing::MakeData(50, {3, 9, 27});
  const auto model = BuildEquiDepth(data, 1);
  ASSERT_EQ(model.NumBuckets(), 1u);
  EXPECT_DOUBLE_EQ(model.TotalCount(), 3.0);
  EXPECT_DOUBLE_EQ(model.MinBorder(), 3.0);
  EXPECT_DOUBLE_EQ(model.MaxBorder(), 28.0);
}

}  // namespace
}  // namespace dynhist
