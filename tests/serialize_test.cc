#include "src/histogram/serialize.h"

#include <cstring>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/frequency_vector.h"
#include "src/histogram/dynamic_vopt.h"
#include "src/histogram/ssbm.h"
#include "src/metrics/ks.h"

namespace dynhist {
namespace {

void ExpectModelsEqual(const HistogramModel& a, const HistogramModel& b) {
  ASSERT_EQ(a.NumPieces(), b.NumPieces());
  ASSERT_EQ(a.NumBuckets(), b.NumBuckets());
  for (std::size_t i = 0; i < a.NumPieces(); ++i) {
    EXPECT_EQ(a.pieces()[i], b.pieces()[i]);
  }
  for (std::size_t i = 0; i < a.NumBuckets(); ++i) {
    EXPECT_EQ(a.buckets()[i].first_piece, b.buckets()[i].first_piece);
    EXPECT_EQ(a.buckets()[i].num_pieces, b.buckets()[i].num_pieces);
    EXPECT_EQ(a.buckets()[i].singular, b.buckets()[i].singular);
  }
  EXPECT_DOUBLE_EQ(a.TotalCount(), b.TotalCount());
}

TEST(SerializeTest, RoundTripsEmptyModel) {
  HistogramModel out;
  ASSERT_TRUE(DeserializeModel(SerializeModel(HistogramModel()), &out));
  EXPECT_TRUE(out.Empty());
}

TEST(SerializeTest, RoundTripsSimpleModel) {
  const auto model = HistogramModel::FromSimpleBuckets(
      {{0, 5, 10.0}, {5, 9, 2.5}, {12, 13, 7.0}});
  HistogramModel out;
  ASSERT_TRUE(DeserializeModel(SerializeModel(model), &out));
  ExpectModelsEqual(model, out);
}

TEST(SerializeTest, RoundTripsMultiPieceBucketsAndSingularFlags) {
  HistogramModel model({{0, 5, 2.0}, {5, 10, 8.0}, {10, 11, 4.0}},
                       {{0, 2, false}, {2, 1, true}});
  HistogramModel out;
  ASSERT_TRUE(DeserializeModel(SerializeModel(model), &out));
  ExpectModelsEqual(model, out);
  EXPECT_TRUE(out.buckets()[1].singular);
}

TEST(SerializeTest, RoundTripsLiveDadoSnapshot) {
  DynamicVOptHistogram h({.buckets = 32,
                          .policy = DeviationPolicy::kAbsolute});
  FrequencyVector truth(1'000);
  Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    const auto v = rng.UniformInt(0, 999);
    h.Insert(v);
    truth.Insert(v);
  }
  const HistogramModel model = h.Model();
  HistogramModel out;
  ASSERT_TRUE(DeserializeModel(SerializeModel(model), &out));
  ExpectModelsEqual(model, out);
  // The reloaded snapshot estimates identically.
  EXPECT_DOUBLE_EQ(KsStatistic(truth, model), KsStatistic(truth, out));
}

TEST(SerializeTest, RejectsBadMagic) {
  std::string bytes = SerializeModel(HistogramModel::FromSimpleBuckets(
      {{0, 1, 1.0}}));
  bytes[0] = 'X';
  HistogramModel out;
  EXPECT_FALSE(DeserializeModel(bytes, &out));
}

TEST(SerializeTest, RejectsTruncation) {
  const std::string bytes = SerializeModel(
      HistogramModel::FromSimpleBuckets({{0, 1, 1.0}, {1, 2, 2.0}}));
  HistogramModel out;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        DeserializeModel(std::string_view(bytes.data(), cut), &out))
        << "accepted truncation at " << cut;
  }
}

TEST(SerializeTest, RejectsTrailingGarbage) {
  std::string bytes = SerializeModel(
      HistogramModel::FromSimpleBuckets({{0, 1, 1.0}}));
  bytes.push_back('\0');
  HistogramModel out;
  EXPECT_FALSE(DeserializeModel(bytes, &out));
}

TEST(SerializeTest, RejectsCorruptPieceGeometry) {
  const auto model =
      HistogramModel::FromSimpleBuckets({{0, 5, 1.0}, {5, 9, 1.0}});
  std::string bytes = SerializeModel(model);
  // Flip the second piece's left border (offset: magic 4 + counts 8 +
  // piece0 24 = 36) to overlap the first piece.
  const double bad_left = 2.0;
  std::memcpy(bytes.data() + 36, &bad_left, sizeof(double));
  HistogramModel out;
  EXPECT_FALSE(DeserializeModel(bytes, &out));
}

TEST(SerializeTest, RejectsNegativeCount) {
  const auto model = HistogramModel::FromSimpleBuckets({{0, 5, 1.0}});
  std::string bytes = SerializeModel(model);
  const double bad_count = -3.0;
  // Piece layout: left(8) right(8) count(8) after the 12-byte header.
  std::memcpy(bytes.data() + 12 + 16, &bad_count, sizeof(double));
  HistogramModel out;
  EXPECT_FALSE(DeserializeModel(bytes, &out));
}

TEST(SerializeTest, RejectsBucketsNotTilingPieces) {
  HistogramModel model({{0, 5, 2.0}, {5, 10, 8.0}}, {{0, 2, false}});
  std::string bytes = SerializeModel(model);
  // Claim the bucket covers only one piece: num_pieces field of bucket 0
  // sits after header(12) + 2 pieces(48) + first_piece(4).
  const std::uint32_t bad = 1;
  std::memcpy(bytes.data() + 12 + 48 + 4, &bad, sizeof(bad));
  HistogramModel out;
  EXPECT_FALSE(DeserializeModel(bytes, &out));
}

TEST(SerializeTest, WireSizeIsCompact) {
  // 64 single-piece buckets: 12 + 64*24 + 64*9 bytes.
  std::vector<HistogramModel::Piece> pieces;
  for (int i = 0; i < 64; ++i) {
    pieces.push_back({static_cast<double>(i), static_cast<double>(i) + 1.0,
                      1.0});
  }
  const auto model = HistogramModel::FromSimpleBuckets(std::move(pieces));
  EXPECT_EQ(SerializeModel(model).size(), 12u + 64u * 24u + 64u * 9u);
}

}  // namespace
}  // namespace dynhist
