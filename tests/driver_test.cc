#include "src/histogram/driver.h"

#include <gtest/gtest.h>

#include "src/histogram/dynamic_vopt.h"
#include "tests/test_util.h"

namespace dynhist {
namespace {

UpdateStream SmallStream() {
  UpdateStream stream;
  for (std::int64_t v = 0; v < 100; ++v) {
    stream.push_back(UpdateOp::Insert(v % 17));
  }
  for (std::int64_t v = 0; v < 40; ++v) {
    stream.push_back(UpdateOp::Delete(v % 17));
  }
  return stream;
}

DynamicVOptConfig Config() {
  return {.buckets = 8, .policy = DeviationPolicy::kAbsolute};
}

TEST(DriverTest, ReplayKeepsHistogramAndTruthInLockStep) {
  DynamicVOptHistogram h(Config());
  FrequencyVector truth(20);
  Replay(SmallStream(), &h, &truth);
  EXPECT_EQ(truth.TotalCount(), 60);
  EXPECT_NEAR(h.TotalCount(), 60.0, 1e-9);
}

TEST(DriverTest, CheckpointsFireInOrderWithFinalFraction) {
  DynamicVOptHistogram h(Config());
  FrequencyVector truth(20);
  std::vector<double> fractions;
  ReplayWithCheckpoints(SmallStream(), &h, &truth, 7,
                        [&](double fraction, const Histogram&,
                            const FrequencyVector&) {
                          fractions.push_back(fraction);
                        });
  ASSERT_EQ(fractions.size(), 7u);
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GT(fractions[i], fractions[i - 1]);
  }
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
}

TEST(DriverTest, CheckpointObserverSeesConsistentState) {
  DynamicVOptHistogram h(Config());
  FrequencyVector truth(20);
  ReplayWithCheckpoints(
      SmallStream(), &h, &truth, 5,
      [&](double /*fraction*/, const Histogram& hist,
          const FrequencyVector& data) {
        // The histogram's count must match the truth's at every checkpoint.
        EXPECT_NEAR(hist.TotalCount(),
                    static_cast<double>(data.TotalCount()), 1e-9);
      });
}

TEST(DriverTest, SingleCheckpointIsJustTheEnd) {
  DynamicVOptHistogram h(Config());
  FrequencyVector truth(20);
  int calls = 0;
  ReplayWithCheckpoints(SmallStream(), &h, &truth, 1,
                        [&](double fraction, const Histogram&,
                            const FrequencyVector&) {
                          ++calls;
                          EXPECT_DOUBLE_EQ(fraction, 1.0);
                        });
  EXPECT_EQ(calls, 1);
}

TEST(DriverDeathTest, DeleteOfAbsentValueIsRejected) {
  DynamicVOptHistogram h(Config());
  FrequencyVector truth(20);
  const UpdateStream bad = {UpdateOp::Delete(5)};
  EXPECT_DEATH(Replay(bad, &h, &truth), "DH_CHECK");
}

}  // namespace
}  // namespace dynhist
