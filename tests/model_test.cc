#include "src/histogram/model.h"

#include <gtest/gtest.h>

namespace dynhist {
namespace {

using Piece = HistogramModel::Piece;

TEST(ModelTest, EmptyModel) {
  HistogramModel model;
  EXPECT_TRUE(model.Empty());
  EXPECT_DOUBLE_EQ(model.TotalCount(), 0.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(123.0), 0.0);
  EXPECT_DOUBLE_EQ(model.EstimateRange(0, 100), 0.0);
}

TEST(ModelTest, TotalCountSumsPieces) {
  const auto model = HistogramModel::FromSimpleBuckets(
      {{0, 10, 5.0}, {10, 20, 15.0}});
  EXPECT_DOUBLE_EQ(model.TotalCount(), 20.0);
  EXPECT_EQ(model.NumBuckets(), 2u);
}

TEST(ModelTest, CdfMassInterpolatesLinearly) {
  const auto model =
      HistogramModel::FromSimpleBuckets({{0, 10, 10.0}, {10, 20, 30.0}});
  EXPECT_DOUBLE_EQ(model.CdfMass(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(5.0), 5.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(10.0), 10.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(15.0), 25.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(20.0), 40.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(99.0), 40.0);
}

TEST(ModelTest, CdfHandlesGapsBetweenBuckets) {
  // Zero-density gap (10, 20): flat CDF.
  const auto model =
      HistogramModel::FromSimpleBuckets({{0, 10, 10.0}, {20, 30, 10.0}});
  EXPECT_DOUBLE_EQ(model.CdfMass(10.0), 10.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(15.0), 10.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(20.0), 10.0);
  EXPECT_DOUBLE_EQ(model.CdfMass(25.0), 15.0);
}

TEST(ModelTest, EstimateRangeUsesCellConvention) {
  // Value v occupies [v, v+1): a single-cell bucket answers point queries
  // exactly.
  const auto model = HistogramModel::FromSimpleBuckets({{5, 6, 7.0}});
  EXPECT_DOUBLE_EQ(model.EstimatePoint(5), 7.0);
  EXPECT_DOUBLE_EQ(model.EstimatePoint(4), 0.0);
  EXPECT_DOUBLE_EQ(model.EstimatePoint(6), 0.0);
  EXPECT_DOUBLE_EQ(model.EstimateRange(0, 10), 7.0);
  EXPECT_DOUBLE_EQ(model.EstimateRange(6, 4), 0.0);  // empty range
}

TEST(ModelTest, EstimateRangePartialOverlap) {
  const auto model = HistogramModel::FromSimpleBuckets({{0, 10, 10.0}});
  // [2, 4] covers cells [2,5): 3 of 10 cells -> 3 points.
  EXPECT_DOUBLE_EQ(model.EstimateRange(2, 4), 3.0);
}

TEST(ModelTest, MultiPieceBuckets) {
  // One bucket with two sub-pieces (a DADO bucket).
  HistogramModel model({{0, 5, 2.0}, {5, 10, 8.0}}, {{0, 2, false}});
  EXPECT_EQ(model.NumBuckets(), 1u);
  EXPECT_EQ(model.NumPieces(), 2u);
  EXPECT_DOUBLE_EQ(model.BucketCount(0), 10.0);
  EXPECT_EQ(model.BucketPieces(0).size(), 2u);
}

TEST(ModelTest, MinMaxBorder) {
  const auto model =
      HistogramModel::FromSimpleBuckets({{3, 7, 1.0}, {7, 12, 2.0}});
  EXPECT_DOUBLE_EQ(model.MinBorder(), 3.0);
  EXPECT_DOUBLE_EQ(model.MaxBorder(), 12.0);
}

TEST(ModelTest, DebugStringListsBuckets) {
  HistogramModel model({{5, 6, 4.0}, {6, 10, 2.0}},
                       {{0, 1, true}, {1, 1, false}});
  const std::string dump = model.DebugString();
  EXPECT_NE(dump.find("2 buckets"), std::string::npos);
  EXPECT_NE(dump.find("(singular)"), std::string::npos);
  EXPECT_NE(dump.find("count=4"), std::string::npos);
}

TEST(ModelDeathTest, RejectsUnsortedPieces) {
  EXPECT_DEATH(HistogramModel::FromSimpleBuckets({{10, 20, 1.0}, {0, 9, 1.0}}),
               "DH_CHECK");
}

TEST(ModelDeathTest, RejectsZeroWidthPiece) {
  EXPECT_DEATH(HistogramModel::FromSimpleBuckets({{5, 5, 1.0}}), "DH_CHECK");
}

TEST(ModelDeathTest, RejectsNegativeCount) {
  EXPECT_DEATH(HistogramModel::FromSimpleBuckets({{0, 5, -1.0}}), "DH_CHECK");
}

TEST(ModelDeathTest, RejectsBucketsNotTilingPieces) {
  EXPECT_DEATH(HistogramModel({{0, 5, 1.0}, {5, 9, 1.0}}, {{0, 1, false}}),
               "DH_CHECK");
}

}  // namespace
}  // namespace dynhist
